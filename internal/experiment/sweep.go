// Sweep generalizes the replication driver from one experiment to a
// whole parameter study: the paper's workflow of sweeping design
// parameters (cache hit ratio, memory speed, ...) across many
// simulation experiments and comparing the resulting performance
// curves.
//
// A sweep expands named parameter axes into a cartesian grid of points.
// Each point is an experiment of R replications; every (point,
// replication) cell fans through one shared worker pool, so a wide
// grid with few replications parallelizes as well as a narrow grid
// with many. Determinism extends the PR-1 guarantee from replications
// to grids:
//
//   - Cell (p, r) always runs with seed BaseSeed + p*Reps + r, no
//     matter which worker executes it. For a single point this
//     degenerates to the replication driver's BaseSeed+r.
//   - Nets are built once per point, before the pool starts, in point
//     order — parameter mutation never races with simulation.
//   - Workers own their engines and rebuild them only when they cross
//     a point boundary; cells are claimed in point-major order, so an
//     engine is typically reused for a whole point's replications.
//   - Per-cell results land in a slice indexed by cell and are merged
//     per point in replication order, so merged statistics and metric
//     summaries are bit-for-bit identical for any worker count.
package experiment

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Axis is one swept parameter: a name plus the values it takes. The
// name is interpreted by the sweep's Build hook (a model parameter, a
// net variable, ...); the driver only expands the grid.
type Axis struct {
	Name   string
	Values []float64
}

// Point identifies one cell of the expanded parameter grid.
type Point struct {
	// Index is the point's row-major position in the grid (the last
	// axis varies fastest).
	Index int
	// Names and Values give the point's coordinates, parallel to the
	// sweep's Axes.
	Names  []string
	Values []float64
}

// Value returns the point's value on the named axis.
func (p *Point) Value(name string) (float64, bool) {
	for i, n := range p.Names {
		if n == name {
			return p.Values[i], true
		}
	}
	return 0, false
}

// String renders the point as "axis=value, ..." for error messages and
// table headers.
func (p *Point) String() string {
	if len(p.Names) == 0 {
		return "(origin)"
	}
	parts := make([]string, len(p.Names))
	for i := range p.Names {
		parts[i] = p.Names[i] + "=" + strconv.FormatFloat(p.Values[i], 'g', -1, 64)
	}
	return strings.Join(parts, ", ")
}

// AdaptiveOptions switch a sweep from a fixed replication count to the
// standard sequential-stopping procedure for replicated simulation:
// every point starts with MinReps replications, and between rounds each
// point whose 95% confidence interval is still too wide relative to its
// mean gets Batch more replications, until it converges or hits
// MaxReps. The stopping decision is made only from replication-order
// summaries between rounds, so it — and therefore every result byte —
// is independent of worker count, shard count and process count.
type AdaptiveOptions struct {
	// Metric names the metric (by its SweepOptions.Metrics name, e.g.
	// "throughput(Issue)") whose confidence interval drives stopping.
	Metric string `json:"metric"`
	// RelCI is the relative-precision target: a point is converged when
	// CI95 <= RelCI * |mean| of its Metric across the replications run
	// so far. A point whose mean is 0 with nonzero CI never satisfies
	// the relative criterion and runs to MaxReps.
	RelCI float64 `json:"relCI"`
	// MinReps is the first round's replication count per point (at
	// least 2 — one replication has no confidence interval).
	MinReps int `json:"minReps"`
	// MaxReps caps a point's replications; it also fixes the seed
	// layout: cell (point p, rep r) always runs with seed
	// BaseSeed + p*MaxReps + r, so a cell's seed never depends on when
	// other points stop.
	MaxReps int `json:"maxReps"`
	// Batch is the number of extra replications an unconverged point
	// receives per round (at least 1).
	Batch int `json:"batch"`
}

// SweepOptions configure one parameter sweep.
type SweepOptions struct {
	// Axes are the swept parameters; their cartesian product is the
	// grid. An empty Axes runs a single point (the origin), which makes
	// a sweep of zero axes exactly equivalent to Run.
	Axes []Axis
	// Reps is the number of independent replications per point (at
	// least 1). Ignored when Adaptive is set.
	Reps int
	// Adaptive, if non-nil, replaces the fixed Reps with CI-targeted
	// sequential stopping: per-point replication counts then vary
	// between Adaptive.MinReps and Adaptive.MaxReps.
	Adaptive *AdaptiveOptions
	// Workers caps the shared worker pool; 0 or less means GOMAXPROCS.
	// The worker count never affects results, only wall-clock time.
	Workers int
	// BaseSeed seeds cell (point, rep) with BaseSeed + point*stride +
	// rep, where stride is Reps for fixed sweeps and Adaptive.MaxReps
	// for adaptive ones (see RepStride). The Seed field of Sim is
	// ignored.
	BaseSeed int64
	// Sim holds the per-run simulation options (Horizon or MaxStarts
	// must be set, exactly as for sim.Run).
	Sim sim.Options
	// Metrics are evaluated against each cell's statistics and
	// summarized per point across its replications. For non-simulation
	// backends the Eval hooks are ignored: the backend resolves each
	// metric by Name (see NamedMetric).
	Metrics []Metric
	// Backend selects the per-cell engine; nil means SimBackend (the
	// stochastic simulator, byte-identical to the pre-backend driver).
	// Deterministic backends require Reps == 1 and no Adaptive.
	Backend Backend
	// Build constructs the net for one grid point. It is called once
	// per point, serially and in point order, before any simulation
	// starts; the returned net must be immutable for the sweep's
	// lifetime (workers share it).
	Build func(Point) (*petri.Net, error)
	// OnCell, if non-nil, is called once per completed cell with the
	// cell's grid point and replication index. Calls are serialized and
	// in cell order within each pool invocation — the same in-order
	// streaming discipline the distributed cell emit uses — so progress
	// reporting (pnut-sweep -progress, the server's SSE feed) observes
	// cells in the deterministic grid order. The hook must not retain
	// the Point's slices past the call and runs on the emit path:
	// blocking in it stalls result streaming, never correctness. It
	// cannot change a result byte.
	OnCell func(pt Point, rep int)
}

// NumPoints returns the number of grid points (the product of the axis
// sizes; 1 for zero axes).
func (o *SweepOptions) NumPoints() int {
	n := 1
	for _, ax := range o.Axes {
		n *= len(ax.Values)
	}
	return n
}

// RepStride is the replication capacity per point: the second dimension
// of the flat cell grid and the seed stride between points. It is Reps
// for fixed sweeps and Adaptive.MaxReps for adaptive ones — so an
// adaptive cell's seed never depends on when other points stop.
func (o *SweepOptions) RepStride() int {
	if o.Adaptive != nil {
		return o.Adaptive.MaxReps
	}
	return o.Reps
}

// NumCells returns the capacity of the flat (point, replication) cell
// grid — the unit a distributed shard plan partitions. An adaptive
// sweep addresses this grid but only runs each point's prefix of it.
func (o *SweepOptions) NumCells() int { return o.NumPoints() * o.RepStride() }

func (o *SweepOptions) workers(cells int) int {
	w := o.Workers
	if w <= 0 {
		w = defaultWorkers()
	}
	if w > cells {
		w = cells
	}
	return w
}

// point expands grid index idx (row-major, last axis fastest) into a
// Point with its own backing arrays.
func (o *SweepOptions) point(idx int) Point {
	pt := Point{
		Index:  idx,
		Names:  make([]string, len(o.Axes)),
		Values: make([]float64, len(o.Axes)),
	}
	rem := idx
	for i := len(o.Axes) - 1; i >= 0; i-- {
		ax := o.Axes[i]
		pt.Names[i] = ax.Name
		pt.Values[i] = ax.Values[rem%len(ax.Values)]
		rem /= len(ax.Values)
	}
	return pt
}

// Validate checks the sweep's shape: positive Reps, a Build hook, and
// well-formed axes. Exported so planners (package dist) can reject a
// bad grid before any process is spawned.
func (o *SweepOptions) Validate() error {
	if a := o.Adaptive; a != nil {
		if a.MinReps < 2 {
			return fmt.Errorf("experiment: adaptive MinReps must be at least 2 (one replication has no CI), got %d", a.MinReps)
		}
		if a.MaxReps < a.MinReps {
			return fmt.Errorf("experiment: adaptive MaxReps %d is below MinReps %d", a.MaxReps, a.MinReps)
		}
		if a.Batch < 1 {
			return fmt.Errorf("experiment: adaptive Batch must be at least 1, got %d", a.Batch)
		}
		if !(a.RelCI > 0) {
			return fmt.Errorf("experiment: adaptive RelCI must be positive, got %g", a.RelCI)
		}
		found := false
		names := make([]string, len(o.Metrics))
		for i := range o.Metrics {
			names[i] = o.Metrics[i].Name
			found = found || names[i] == a.Metric
		}
		if !found {
			return fmt.Errorf("experiment: adaptive metric %q is not among the sweep metrics %v", a.Metric, names)
		}
	} else if o.Reps < 1 {
		return fmt.Errorf("experiment: sweep Reps must be at least 1, got %d", o.Reps)
	}
	if o.Build == nil {
		return fmt.Errorf("experiment: sweep needs a Build hook")
	}
	if b := o.backend(); b.Deterministic() {
		if o.Adaptive != nil {
			return fmt.Errorf("experiment: the %s engine is deterministic; adaptive replication needs a stochastic engine", b.Engine())
		}
		if o.Reps != 1 {
			return fmt.Errorf("experiment: the %s engine is deterministic; Reps must be 1, got %d", b.Engine(), o.Reps)
		}
	}
	// Minting a worker validates the metric set against the backend
	// eagerly (name resolution, CTL parsing, Eval presence), so a bad
	// metric fails here — before planners spawn processes or pools
	// schedule cells.
	if _, err := o.backend().NewWorker(o); err != nil {
		return err
	}
	seen := make(map[string]bool, len(o.Axes))
	for i, ax := range o.Axes {
		if ax.Name == "" {
			return fmt.Errorf("experiment: axis %d has no name", i)
		}
		if seen[ax.Name] {
			return fmt.Errorf("experiment: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("experiment: axis %q has no values", ax.Name)
		}
	}
	return nil
}

// PointResult is the outcome of one grid point: an R-replication
// experiment, merged deterministically.
type PointResult struct {
	Point Point
	// Reps is the number of replications this point ran: the sweep's
	// fixed Reps, or — adaptively — wherever the stopping rule landed
	// between MinReps and MaxReps.
	Reps int
	// Pooled holds the point's statistics merged in replication order.
	Pooled *stats.Stats
	// Summaries holds one cross-replication summary per metric, in
	// SweepOptions.Metrics order.
	Summaries []stats.Summary
	// Values holds per-replication metric values, Values[m][r] being
	// metric m of replication r.
	Values [][]float64
	// Runs holds each replication's run summary.
	Runs []sim.Result
}

// SweepResult is the outcome of a whole sweep.
type SweepResult struct {
	// Axes echoes the grid shape; Points holds one result per grid
	// point in row-major order (the last axis varies fastest).
	Axes   []Axis
	Points []PointResult
	// Reps and Workers echo the effective sweep shape; for an adaptive
	// sweep Reps is the per-point cap (Adaptive.MaxReps) and each
	// point's actual count is in its PointResult.
	Reps    int
	Workers int
	// Adaptive echoes the stopping rule of an adaptive sweep (nil for
	// fixed-replication sweeps); TotalReps is the total number of
	// replications run across all points — the quantity adaptive
	// stopping minimizes.
	Adaptive  *AdaptiveOptions
	TotalReps int
	// Elapsed is the wall-clock time of the whole sweep; Events is the
	// total number of firings completed across all cells.
	Elapsed time.Duration
	Events  int64

	names []string // metric names, parallel to each point's Summaries
}

// MetricNames returns the metric names, in SweepOptions.Metrics order.
func (r *SweepResult) MetricNames() []string {
	return append([]string(nil), r.names...)
}

// ParseAxis parses the textual axis form used by the sweep CLIs. Each
// comma-separated element is either a single value or an inclusive
// range lo:hi:step, so big distributed grids don't need 50-value lists:
//
//	MemoryCycles=1,5,12
//	DHitRatio=0:1:0.1
//	MemoryCycles=1:5:1,12          (forms mix freely)
//	Depth=10:2:-2                  (descending: negative step)
//
// Range endpoints are inclusive up to a small floating-point tolerance;
// values are computed as lo + i*step (no error accumulation).
func ParseAxis(s string) (Axis, error) {
	name, list, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return Axis{}, fmt.Errorf("experiment: axis %q is not name=v1,v2,... or name=lo:hi:step", s)
	}
	if strings.TrimSpace(list) == "" {
		return Axis{}, fmt.Errorf("experiment: axis %q has no values", name)
	}
	ax := Axis{Name: name}
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Axis{}, fmt.Errorf("experiment: axis %q has an empty value (trailing or doubled comma?)", name)
		}
		if strings.Contains(part, ":") {
			vals, err := expandRange(name, part)
			if err != nil {
				return Axis{}, err
			}
			ax.Values = append(ax.Values, vals...)
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return Axis{}, fmt.Errorf("experiment: axis %q: bad value %q", name, part)
		}
		ax.Values = append(ax.Values, v)
	}
	return ax, nil
}

// maxRangeValues caps a single lo:hi:step expansion; a grid bigger than
// this is almost certainly a typo'd step.
const maxRangeValues = 1_000_000

// expandRange expands one inclusive lo:hi:step element of an axis spec.
func expandRange(name, part string) ([]float64, error) {
	fields := strings.Split(part, ":")
	if len(fields) != 3 {
		return nil, fmt.Errorf("experiment: axis %q: range %q is not lo:hi:step", name, part)
	}
	var lo, hi, step float64
	for i, dst := range []*float64{&lo, &hi, &step} {
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("experiment: axis %q: range %q: bad value %q", name, part, fields[i])
		}
		*dst = v
	}
	if step == 0 {
		return nil, fmt.Errorf("experiment: axis %q: range %q has step 0", name, part)
	}
	if (hi-lo)/step < 0 {
		return nil, fmt.Errorf("experiment: axis %q: range %q: step moves away from hi", name, part)
	}
	// Inclusive endpoint with a small tolerance: 0:1:0.1 must yield 11
	// values even though 10*0.1 overshoots 1 in binary. Compare as
	// float before converting so a huge count cannot overflow int.
	count := (hi-lo)/step + 1e-9
	if !(count < maxRangeValues) {
		return nil, fmt.Errorf("experiment: axis %q: range %q expands to over %d values", name, part, maxRangeValues)
	}
	n := int(count)
	vals := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		vals = append(vals, lo+float64(i)*step)
	}
	// Clamp the endpoint: lo+n*step can overshoot hi by an ulp (e.g.
	// 0:0.7:0.1 lands on 0.7000000000000001 > 0.7), which would make a
	// range axis disagree with the equivalent explicit list in every
	// table, CSV and journal meta. If the last value is within a step
	// tolerance of hi, it *is* hi.
	if last := &vals[len(vals)-1]; *last != hi && math.Abs(*last-hi) <= math.Abs(step)*1e-6 {
		*last = hi
	}
	return vals, nil
}

// Sweep expands opt.Axes into a grid, runs Reps replications of every
// point through one shared worker pool, and merges per-point results.
// Every number in the result is bit-for-bit independent of the worker
// count.
//
// ctx cancels the sweep: the shared pool stops claiming cells,
// in-flight runs stop at their next scheduler batch, and ctx's error
// is returned. The distributed coordinator relies on this to abandon
// local shards when a sibling worker process dies instead of hanging
// the pool; pass context.Background() when cancellation is not needed.
//
// The sweep is one shard spanning the whole grid followed by the same
// deterministic assembly a distributed run ends with, so the in-process
// and multi-process paths cannot drift apart.
func Sweep(ctx context.Context, opt SweepOptions) (*SweepResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	var (
		recs []CellRecord
		err  error
	)
	if opt.Adaptive != nil {
		recs, err = runAdaptiveCells(ctx, opt)
	} else {
		recs, err = RunCellsContext(ctx, opt, 0, opt.NumCells(), nil)
	}
	if err != nil {
		return nil, err
	}
	r, err := AssembleSweep(opt, recs)
	if err != nil {
		return nil, err
	}
	r.Workers = opt.workers(opt.NumCells())
	r.Elapsed = time.Since(start)
	return r, nil
}

func formatG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTable renders the sweep as an aligned text table: one row per
// grid point, one column per axis, then "mean ±ci95" per metric. An
// adaptive sweep adds an "n" column (the point's replication count)
// after the axes.
func (r *SweepResult) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, ax := range r.Axes {
		fmt.Fprintf(tw, "%s\t", ax.Name)
	}
	if r.Adaptive != nil {
		fmt.Fprintf(tw, "n\t")
	}
	for _, n := range r.names {
		fmt.Fprintf(tw, "%s\t", n)
	}
	fmt.Fprintln(tw)
	for _, pt := range r.Points {
		for _, v := range pt.Point.Values {
			fmt.Fprintf(tw, "%s\t", formatG(v))
		}
		if r.Adaptive != nil {
			fmt.Fprintf(tw, "%d\t", pt.Reps)
		}
		for _, s := range pt.Summaries {
			fmt.Fprintf(tw, "%.4f ±%.4f\t", s.Mean, s.CI95)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV renders the sweep as CSV: one row per grid point, one
// column per axis, then mean/ci95/stddev columns per metric. Floats
// print with full precision, so equal results encode to equal bytes —
// the determinism tests compare sweeps through this encoding.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := make([]string, 0, len(r.Axes)+1+3*len(r.names))
	for _, ax := range r.Axes {
		head = append(head, ax.Name)
	}
	if r.Adaptive != nil {
		head = append(head, "n")
	}
	for _, n := range r.names {
		head = append(head, n+" mean", n+" ci95", n+" sd")
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	row := make([]string, 0, cap(head))
	for _, pt := range r.Points {
		row = row[:0]
		for _, v := range pt.Point.Values {
			row = append(row, formatG(v))
		}
		if r.Adaptive != nil {
			row = append(row, strconv.Itoa(pt.Reps))
		}
		for _, s := range pt.Summaries {
			row = append(row, formatG(s.Mean), formatG(s.CI95), formatG(s.StdDev))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
