// AnalyticBackend drives the exact steady-state solver through the
// sweep grid: each point's timed reachability graph is solved as a
// semi-Markov process (analytic.Evaluate) and the sweep metrics read
// exact throughputs and utilizations off the stationary distribution.
// Metric names are deliberately the simulation names — throughput(T),
// utilization(P) — so an analytic sweep's table aligns column for
// column with the simulation sweep over the same grid; that alignment
// is what the sim+analytic cross-validation mode diffs.
package experiment

import (
	"context"
	"fmt"

	"repro/internal/analytic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AnalyticBackend is the exact analytic engine. The zero value uses
// the reach package's state-space defaults.
type AnalyticBackend struct {
	// Opt carries the state-space controls. MaxStates pins the grid and
	// enters the cell-stream meta (a truncated timed graph is an error,
	// not a lower bound); Shards is the timed build's exploration
	// parallelism and never affects results.
	Opt reach.Options
}

// Engine implements Backend.
func (AnalyticBackend) Engine() string { return "analytic" }

// Deterministic implements Backend.
func (AnalyticBackend) Deterministic() bool { return true }

// StatePins reports the state-space controls that pin the grid meta.
func (b AnalyticBackend) StatePins() (maxStates, boundCap int) {
	return b.Opt.MaxStates, b.Opt.BoundCap
}

// NewWorker implements Backend, resolving metric names eagerly.
func (b AnalyticBackend) NewWorker(opt *SweepOptions) (BackendWorker, error) {
	evals := make([]func(*analytic.Result) (float64, error), len(opt.Metrics))
	for i := range opt.Metrics {
		name := opt.Metrics[i].Name
		fn, arg, ok := parseCall(name)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown analytic metric %q (want throughput(transition) or utilization(place))", name)
		}
		switch fn {
		case "throughput":
			tr := arg
			evals[i] = func(r *analytic.Result) (float64, error) { return r.Throughput(tr) }
		case "utilization":
			p := arg
			evals[i] = func(r *analytic.Result) (float64, error) { return r.Utilization(p) }
		default:
			return nil, fmt.Errorf("experiment: unknown analytic metric %q (want throughput(transition) or utilization(place))", name)
		}
	}
	return &analyticWorker{b: b, evals: evals}, nil
}

type analyticWorker struct {
	b     AnalyticBackend
	evals []func(*analytic.Result) (float64, error)
}

// RunCell implements BackendWorker. ctx threads through to the timed
// graph construction, so cancelling a sweep interrupts a cell
// mid-build at the next level barrier.
func (w *analyticWorker) RunCell(ctx context.Context, in CellInput) (CellOutcome, error) {
	if err := ctx.Err(); err != nil {
		return CellOutcome{}, err
	}
	r, err := analytic.Evaluate(ctx, in.Net, w.b.Opt)
	if err != nil {
		return CellOutcome{}, err
	}
	out := CellOutcome{
		Values: make([]float64, len(w.evals)),
		Stats:  stats.New(in.Header),
		Run:    sim.Result{},
	}
	for i, eval := range w.evals {
		v, err := eval(r)
		if err != nil {
			return CellOutcome{}, err
		}
		out.Values[i] = v
	}
	return out, nil
}
