// Adaptive replication: the sequential-stopping procedure for
// replicated simulation experiments. A fixed -reps wastes replications
// on low-variance grid points and under-samples noisy ones; instead,
// every point starts with MinReps replications and, between rounds,
// each point whose 95% CI half-width still exceeds RelCI * |mean| of
// the target metric receives Batch more — until it converges or hits
// MaxReps.
//
// Determinism is preserved exactly as for fixed sweeps:
//
//   - The cell grid is points x MaxReps; cell (p, r) always runs with
//     seed BaseSeed + p*MaxReps + r, so a cell's seed never depends on
//     when other points stop.
//   - The stopping decision is taken only between rounds, from metric
//     values summarized in replication order — a pure function of the
//     completed records. Worker goroutines, shard plans and process
//     counts change wall-clock time only, never which cells run.
//   - A resumed run replays the same rounds from its journal: the
//     controller recomputes convergence from the journaled cells and
//     re-dispatches only what is missing.
package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/stats"
)

// AdaptiveController drives the round structure of one adaptive sweep:
// it tracks each point's current replication target and convergence
// state, hands out the pending cell set, and — once a round's records
// are complete — decides which points need another batch.
type AdaptiveController struct {
	points, stride  int
	min, max, batch int
	relCI           float64
	metric          int
	n               []int  // current replication target per point
	converged       []bool // stopping decision taken for this point
}

// NewAdaptiveController validates opt (which must have Adaptive set)
// and returns a controller with every point at its MinReps target.
func NewAdaptiveController(opt *SweepOptions) (*AdaptiveController, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	a := opt.Adaptive
	if a == nil {
		return nil, fmt.Errorf("experiment: sweep is not adaptive (Adaptive is nil)")
	}
	c := &AdaptiveController{
		points: opt.NumPoints(),
		stride: opt.RepStride(),
		min:    a.MinReps, max: a.MaxReps, batch: a.Batch,
		relCI:  a.RelCI,
		metric: -1,
	}
	for i := range opt.Metrics {
		if opt.Metrics[i].Name == a.Metric {
			c.metric = i
			break
		}
	}
	if c.metric < 0 { // unreachable after Validate, but keep the guard
		return nil, fmt.Errorf("experiment: adaptive metric %q is not among the sweep metrics", a.Metric)
	}
	c.n = make([]int, c.points)
	c.converged = make([]bool, c.points)
	for p := range c.n {
		c.n[p] = c.min
	}
	return c, nil
}

// MetricIndex returns the index (into SweepOptions.Metrics and
// CellRecord.Values) of the metric driving the stopping rule.
func (c *AdaptiveController) MetricIndex() int { return c.metric }

// RepCounts returns the current per-point replication targets (after
// the final Advance: the per-point counts of the finished sweep).
func (c *AdaptiveController) RepCounts() []int {
	return append([]int(nil), c.n...)
}

// TargetCells returns the total number of cells in the current target
// set — the replications the sweep has committed to so far.
func (c *AdaptiveController) TargetCells() int {
	t := 0
	for _, n := range c.n {
		t += n
	}
	return t
}

// PendingSpans returns the contiguous spans of target-set cells that
// have not run yet (have reports false). An empty result means the
// current round is complete — typically because a journal already held
// it — and the controller can Advance.
func (c *AdaptiveController) PendingSpans(have func(cell int) bool) []CellSpan {
	return MissingCellSpans(c.points*c.stride, func(cell int) bool {
		if cell%c.stride >= c.n[cell/c.stride] {
			return true // outside the target set: nothing to run
		}
		return have(cell)
	})
}

// Advance takes the stopping decision for the completed round: every
// unconverged point's metric values (value(cell), for the target
// prefix, in replication order) are summarized, points meeting the
// relative-precision target — or the MaxReps cap — are frozen, and the
// rest have their targets raised by Batch. It returns true when at
// least one point got a new target, i.e. another round must run.
func (c *AdaptiveController) Advance(value func(cell int) float64) bool {
	more := false
	for p := 0; p < c.points; p++ {
		if c.converged[p] {
			continue
		}
		vals := make([]float64, c.n[p])
		for r := range vals {
			vals[r] = value(p*c.stride + r)
		}
		s := stats.Summarize(vals)
		if s.CI95 <= c.relCI*math.Abs(s.Mean) || c.n[p] >= c.max {
			c.converged[p] = true
			continue
		}
		c.n[p] += c.batch
		if c.n[p] > c.max {
			c.n[p] = c.max
		}
		more = true
	}
	return more
}

// AdaptiveRounds drives the stopping loop shared by the in-process
// sweep and the distributed coordinator: each iteration runs the
// pending cell set (run must make the new records visible to have and
// value before returning) and then advances the controller, until every
// point is converged. Keeping the loop in one place guarantees the two
// execution paths take bit-for-bit identical stopping decisions.
func AdaptiveRounds(ctrl *AdaptiveController, have func(cell int) bool, value func(cell int) float64, run func(spans []CellSpan) error) error {
	for {
		if spans := ctrl.PendingSpans(have); len(spans) > 0 {
			if err := run(spans); err != nil {
				return err
			}
		}
		if !ctrl.Advance(value) {
			return nil
		}
	}
}

// runAdaptiveCells executes a whole adaptive sweep in-process and
// returns the completed records in cell order.
func runAdaptiveCells(ctx context.Context, opt SweepOptions) ([]CellRecord, error) {
	ctrl, err := NewAdaptiveController(&opt)
	if err != nil {
		return nil, err
	}
	byCell := make([]*CellRecord, opt.NumCells())
	err = AdaptiveRounds(ctrl,
		func(cell int) bool { return byCell[cell] != nil },
		func(cell int) float64 { return byCell[cell].Values[ctrl.MetricIndex()] },
		func(spans []CellSpan) error {
			recs, err := RunCellSpansContext(ctx, opt, spans, nil)
			if err != nil {
				return err
			}
			for i := range recs {
				byCell[recs[i].Cell] = &recs[i]
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	recs := make([]CellRecord, 0, ctrl.TargetCells())
	for _, rec := range byCell {
		if rec != nil {
			recs = append(recs, *rec)
		}
	}
	return recs, nil
}
