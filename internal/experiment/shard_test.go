package experiment

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// TestParseAxisRange is the table for the lo:hi:step axis syntax.
func TestParseAxisRange(t *testing.T) {
	cases := []struct {
		in   string
		want []float64
		err  string // substring of the expected error, "" for success
	}{
		{in: "X=1,5,12", want: []float64{1, 5, 12}},
		{in: "X=0:1:0.25", want: []float64{0, 0.25, 0.5, 0.75, 1}},
		{in: "X=0:1:0.1", want: []float64{0, 0.1, 0.2, 0.30000000000000004, 0.4, 0.5, 0.6000000000000001, 0.7000000000000001, 0.8, 0.9, 1}},
		{in: "X=1:5:1,12", want: []float64{1, 2, 3, 4, 5, 12}},
		{in: "X=10:2:-4", want: []float64{10, 6, 2}},
		{in: "X=3:3:1", want: []float64{3}},
		{in: "X=1:2:5", want: []float64{1}}, // step overshoots: lo only
		// Endpoint clamp regressions: lo+n*step may overshoot hi by an
		// ulp; the final value must be exactly hi (so a range agrees with
		// the equivalent explicit list), ascending and descending.
		{in: "X=0:0.7:0.1", want: []float64{0, 0.1, 0.2, 0.30000000000000004, 0.4, 0.5, 0.6000000000000001, 0.7}},
		{in: "X=0.7:0:-0.1", want: []float64{0.7, 0.6, 0.49999999999999994, 0.3999999999999999, 0.29999999999999993, 0.19999999999999996, 0.09999999999999987, 0}},
		// ... but a range that genuinely stops short of hi is not
		// clamped: 0.9 is not "within tolerance" of 1.
		{in: "X=0:1:0.3", want: []float64{0, 0.3, 0.6, 0.8999999999999999}},
		{in: "", err: "name=v1,v2"},
		{in: "=1,2", err: "name=v1,v2"},
		{in: "X=", err: "no values"},
		{in: "X= ", err: "no values"},
		{in: "X=1,,2", err: "empty value"},
		{in: "X=1,", err: "empty value"},
		{in: "X=1:2", err: "not lo:hi:step"},
		{in: "X=1:2:3:4", err: "not lo:hi:step"},
		{in: "X=1:2:0", err: "step 0"},
		{in: "X=1:5:-1", err: "away from hi"},
		{in: "X=5:1:1", err: "away from hi"},
		{in: "X=a:5:1", err: "bad value"},
		{in: "X=0:1:nan", err: "bad value"},
		{in: "X=0:inf:1", err: "bad value"},
		{in: "X=0:1e9:0.001", err: "over"},
		{in: "X=0:1e19:1", err: "over"},
		{in: "X=-1e308:1e308:1", err: "over"},
	}
	for _, c := range cases {
		ax, err := ParseAxis(c.in)
		if c.err != "" {
			if err == nil || !strings.Contains(err.Error(), c.err) {
				t.Errorf("ParseAxis(%q) error = %v, want substring %q", c.in, err, c.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAxis(%q): %v", c.in, err)
			continue
		}
		if len(ax.Values) != len(c.want) {
			t.Errorf("ParseAxis(%q) = %v, want %v", c.in, ax.Values, c.want)
			continue
		}
		for i := range c.want {
			if ax.Values[i] != c.want[i] {
				t.Errorf("ParseAxis(%q)[%d] = %v, want %v", c.in, i, ax.Values[i], c.want[i])
			}
		}
	}
}

// TestRunCellsSpansAssembleToSweep is the shard contract at the library
// level: any partition of the cell grid into contiguous spans, each run
// with its own worker count, reassembles byte-identically to the
// in-process Sweep.
func TestRunCellsSpansAssembleToSweep(t *testing.T) {
	opt := gridOptions(3, 0) // 4 points x 3 reps = 12 cells
	want, err := Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := encode(t, want)

	partitions := [][]int{
		{0, 12},
		{0, 5, 12},
		{0, 3, 6, 9, 12},
		{0, 1, 11, 12},
	}
	for _, cuts := range partitions {
		var recs []CellRecord
		for i := 0; i+1 < len(cuts); i++ {
			shardOpt := opt
			shardOpt.Workers = 1 + i%2 // vary the per-shard pool
			part, err := RunCellsContext(context.Background(), shardOpt, cuts[i], cuts[i+1], nil)
			if err != nil {
				t.Fatalf("span %d:%d: %v", cuts[i], cuts[i+1], err)
			}
			recs = append(recs, part...)
		}
		got, err := AssembleSweep(opt, recs)
		if err != nil {
			t.Fatalf("partition %v: %v", cuts, err)
		}
		if encode(t, got) != wantEnc {
			t.Errorf("partition %v reassembles differently from Sweep", cuts)
		}
	}
}

// TestCellCodecRoundTrip: records that cross the JSONL process boundary
// reassemble byte-identically, and the emit stream arrives in cell
// order.
func TestCellCodecRoundTrip(t *testing.T) {
	opt := gridOptions(2, 0) // 8 cells
	want, err := Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	cw, err := NewCellWriter(&buf, MetaOf(opt, "pipeline_cached"))
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	if _, err := RunCellsContext(context.Background(), opt, 0, opt.NumCells(), func(rec CellRecord) error {
		if rec.Cell != emitted {
			t.Errorf("emit order: got cell %d, want %d", rec.Cell, emitted)
		}
		emitted++
		return cw.Write(rec)
	}); err != nil {
		t.Fatal(err)
	}
	if emitted != opt.NumCells() {
		t.Fatalf("emitted %d of %d cells", emitted, opt.NumCells())
	}

	cr, err := NewCellReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	meta := MetaOf(opt, "pipeline_cached")
	if got := cr.Meta(); !got.SameGrid(&meta) {
		t.Errorf("decoded meta %+v does not match grid", got)
	}
	// Every schedule-shaping option must participate in SameGrid.
	for name, mutate := range map[string]func(*SweepOptions){
		"seed":      func(o *SweepOptions) { o.BaseSeed++ },
		"reps":      func(o *SweepOptions) { o.Reps++ },
		"horizon":   func(o *SweepOptions) { o.Sim.Horizon++ },
		"maxStarts": func(o *SweepOptions) { o.Sim.MaxStarts = 7 },
		"axis":      func(o *SweepOptions) { o.Axes[0].Values[0]++ },
		"metrics":   func(o *SweepOptions) { o.Metrics = o.Metrics[:1] },
	} {
		drifted := opt
		drifted.Axes = append([]Axis(nil), opt.Axes...)
		drifted.Axes[0].Values = append([]float64(nil), opt.Axes[0].Values...)
		mutate(&drifted)
		dm := MetaOf(drifted, "pipeline_cached")
		if dm.SameGrid(&meta) {
			t.Errorf("SameGrid ignores a %s drift", name)
		}
	}
	var recs []CellRecord
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	got, err := AssembleSweep(opt, recs)
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, got) != encode(t, want) {
		t.Error("codec round trip changed the assembled sweep")
	}
}

// TestCellStreamValidation: wrong formats and versions are rejected,
// truncated streams surface as incomplete grids.
func TestCellStreamValidation(t *testing.T) {
	if _, err := NewCellReader(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := NewCellReader(strings.NewReader(`{"format":"other","version":1}` + "\n")); err == nil ||
		!strings.Contains(err.Error(), "format") {
		t.Errorf("wrong format error = %v", err)
	}
	if _, err := NewCellReader(strings.NewReader(`{"format":"pnut-cells","version":99}` + "\n")); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version error = %v", err)
	}

	opt := gridOptions(2, 1)
	recs, err := RunCellsContext(context.Background(), opt, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssembleSweep(opt, recs); err == nil || !strings.Contains(err.Error(), "missing cell") {
		t.Errorf("incomplete grid error = %v", err)
	}
	dup := append(append([]CellRecord(nil), recs...), recs[0])
	if _, err := AssembleSweep(opt, dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate cell error = %v", err)
	}
}

// TestSweepCancellation: cancelling the context stops the shared pool
// at the next cell boundary instead of running the grid to completion.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opt := gridOptions(8, 1) // 32 cells on one worker
	ran := 0
	opt.Metrics = append(opt.Metrics, Metric{
		Name: "tripwire",
		Eval: func(*stats.Stats) (float64, error) {
			ran++
			cancel() // first completed cell pulls the plug
			return 0, nil
		},
	})
	_, err := Sweep(ctx, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep error = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Errorf("%d cells ran after cancellation, want 1", ran)
	}
}

// TestRunCancellation mirrors the sweep test for the replication driver.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	net := testNet(t)
	ran := 0
	_, err := Run(ctx, net, Options{
		Reps: 16, Workers: 1, BaseSeed: 5,
		Sim: sim.Options{Horizon: 500},
		Metrics: []Metric{{Name: "tripwire", Eval: func(*stats.Stats) (float64, error) {
			ran++
			cancel()
			return 0, nil
		}}},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Errorf("%d replications ran after cancellation, want 1", ran)
	}
}

// TestAssembleSweepDoesNotMutateInput: assembly folds each point's
// replications into a *clone* of the first accumulator, so the caller's
// records survive — a coordinator may re-journal or re-assemble the
// same slice and get identical bytes, not polluted accumulators.
func TestAssembleSweepDoesNotMutateInput(t *testing.T) {
	opt := gridOptions(3, 0)
	recs, err := RunCellsContext(context.Background(), opt, 0, opt.NumCells(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := make([][]byte, len(recs))
	for i := range recs {
		if before[i], err = EncodeCell(recs[i]); err != nil {
			t.Fatal(err)
		}
	}

	first, err := AssembleSweep(opt, recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		after, err := EncodeCell(recs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before[i], after) {
			t.Fatalf("assembly mutated input record for cell %d:\n before %s\n after  %s",
				recs[i].Cell, before[i], after)
		}
	}

	// Re-assembling the same records must therefore be byte-identical.
	second, err := AssembleSweep(opt, recs)
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, second) != encode(t, first) {
		t.Error("second assembly of the same records differs from the first")
	}
}

// TestRunCellsBadSpan covers span validation.
func TestRunCellsBadSpan(t *testing.T) {
	opt := gridOptions(2, 1)
	for _, span := range [][2]int{{-1, 2}, {0, 9}, {3, 3}, {5, 2}} {
		if _, err := RunCellsContext(context.Background(), opt, span[0], span[1], nil); err == nil ||
			!strings.Contains(err.Error(), "span") {
			t.Errorf("span %v error = %v", span, err)
		}
	}
}
