package experiment

// OnCell progress-hook regression tests: the hook observes every cell
// exactly once, in deterministic grid order, regardless of worker
// count — and installing it cannot perturb a result byte.

import (
	"context"
	"runtime"
	"testing"
)

type hookCall struct {
	point int
	rep   int
}

func TestOnCellFiresInCellOrder(t *testing.T) {
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		opt := gridOptions(3, workers)
		var calls []hookCall
		opt.OnCell = func(pt Point, rep int) {
			calls = append(calls, hookCall{point: pt.Index, rep: rep})
		}
		if _, err := Sweep(context.Background(), opt); err != nil {
			t.Fatal(err)
		}
		if len(calls) != opt.NumCells() {
			t.Fatalf("workers=%d: %d OnCell calls, want %d", workers, len(calls), opt.NumCells())
		}
		stride := opt.RepStride()
		for i, c := range calls {
			if want := (hookCall{point: i / stride, rep: i % stride}); c != want {
				t.Fatalf("workers=%d: call %d = %+v, want %+v (cell order)", workers, i, c, want)
			}
		}
	}
}

func TestOnCellDoesNotPerturbResults(t *testing.T) {
	base := gridOptions(3, 4)
	plain, err := Sweep(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	hooked := gridOptions(3, 4)
	hooked.OnCell = func(Point, int) {}
	withHook, err := Sweep(context.Background(), hooked)
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, plain) != encode(t, withHook) {
		t.Fatal("OnCell hook changed the sweep result")
	}
}

func TestOnCellAdaptiveOrderWithinRounds(t *testing.T) {
	opt := gridOptions(0, 2)
	opt.Adaptive = &AdaptiveOptions{
		Metric:  "throughput(Issue)",
		RelCI:   0.05,
		MinReps: 2,
		MaxReps: 8,
		Batch:   2,
	}
	var calls []hookCall
	opt.OnCell = func(pt Point, rep int) {
		calls = append(calls, hookCall{point: pt.Index, rep: rep})
	}
	r, err := Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != r.TotalReps {
		t.Fatalf("%d OnCell calls, want TotalReps %d", len(calls), r.TotalReps)
	}
	// Each replication round is a separate pool invocation; within a
	// round cells arrive in ascending cell order. Rounds themselves run
	// ascending-by-rep, so a cell's (rep, point) pairs must be sorted by
	// rounds: every call either stays in the same round (ascending cell)
	// or starts a later round. Verify per-point reps count matches the
	// result and that no (point, rep) pair repeats.
	seen := make(map[hookCall]bool, len(calls))
	perPoint := make(map[int]int)
	for _, c := range calls {
		if seen[c] {
			t.Fatalf("cell (point %d, rep %d) observed twice", c.point, c.rep)
		}
		seen[c] = true
		perPoint[c.point]++
	}
	for p, pr := range r.Points {
		if perPoint[p] != pr.Reps {
			t.Fatalf("point %d: %d OnCell calls, want %d reps", p, perPoint[p], pr.Reps)
		}
	}
}
