// Package modelgen builds deterministic families of large timed Petri
// nets for benchmarks and scheduler/oracle property tests. Two shapes
// cover the workloads the paper's models stress:
//
//   - DeepPipeline: a long ring of stages, the token-recirculation
//     pattern of the Section 2 processor scaled to hundreds of stages.
//     Stages draw varied firing and enabling delays, every third stage
//     carries a frequency-weighted rival (probabilistic conflict) and
//     every fourth a single-server cap, so the hot loop sees conflicts,
//     caps and timer resets — not just a conveyor belt.
//   - ForkJoin: one wide fork into parallel branch chains joined back
//     into the source, the barrier-synchronisation pattern; weighted
//     arcs on the fork/join exercise multi-token consumption.
//
// Both families are closed (tokens only circulate) and every cycle
// carries at least one strictly positive delay, so generated nets can
// never livelock at a single instant. Structure and delays depend only
// on (shape parameters, seed): equal arguments build identical nets on
// every run and platform, which is what lets tests pin traces to seeds.
package modelgen

import (
	"fmt"
	"math/rand"

	"repro/internal/petri"
)

// delayFor draws a small firing-time distribution. Lo bounds are >= 1:
// no generated cycle is ever timeless.
func delayFor(r *rand.Rand) petri.Delay {
	switch r.Intn(3) {
	case 0:
		return petri.Constant(1 + petri.Time(r.Intn(5)))
	case 1:
		lo := 1 + petri.Time(r.Intn(3))
		return petri.Uniform{Lo: lo, Hi: lo + petri.Time(1+r.Intn(4))}
	default:
		return petri.Choice{
			Durations: []petri.Time{1 + petri.Time(r.Intn(3)), 4 + petri.Time(r.Intn(4))},
			Weights:   []float64{2, 1},
		}
	}
}

// DeepPipeline builds a ring of stages places s0..s{stages-1}, stage i
// drained by transition ti into stage i+1 (mod stages), with tokens
// initial tokens on s0. Every third stage has a rival transition
// (frequency-weighted conflict over the same tokens) and every fourth a
// single-server cap. Panics if stages < 2 or tokens < 1.
func DeepPipeline(stages, tokens int, seed int64) *petri.Net {
	if stages < 2 || tokens < 1 {
		panic(fmt.Sprintf("modelgen: DeepPipeline(%d, %d) needs stages >= 2, tokens >= 1", stages, tokens))
	}
	r := rand.New(rand.NewSource(seed))
	b := petri.NewBuilder(fmt.Sprintf("deep_pipeline_s%d_k%d_seed%d", stages, tokens, seed))
	for i := 0; i < stages; i++ {
		if i == 0 {
			b.Place(place("s", i), tokens)
		} else {
			b.Place(place("s", i), 0)
		}
	}
	for i := 0; i < stages; i++ {
		next := (i + 1) % stages
		t := b.Trans(place("t", i)).In(place("s", i)).Out(place("s", next)).Firing(delayFor(r))
		if r.Intn(2) == 0 {
			t.EnablingConst(1 + petri.Time(r.Intn(3)))
		}
		if i%4 == 1 {
			t.Servers(1)
		}
		if i%3 == 2 {
			// A rival over the same stage: same pre/post sets, different
			// delay and weight, so ripe-set conflict resolution runs.
			b.Trans(place("u", i)).In(place("s", i)).Out(place("s", next)).
				Firing(delayFor(r)).Freq(0.5 + float64(r.Intn(3)))
		}
	}
	return b.MustBuild()
}

// ForkJoin builds width parallel chains of depth stages between a fork
// and a join over a shared source place. The fork consumes two tokens
// per firing and the join returns two (weighted arcs), the source
// starts with 2*tokens tokens, and the join carries a firing delay, so
// the net is conservative and live. Panics if width < 2, depth < 1 or
// tokens < 1.
func ForkJoin(width, depth int, seed int64) *petri.Net {
	if width < 2 || depth < 1 {
		panic(fmt.Sprintf("modelgen: ForkJoin(%d, %d) needs width >= 2, depth >= 1", width, depth))
	}
	tokens := 1
	r := rand.New(rand.NewSource(seed))
	b := petri.NewBuilder(fmt.Sprintf("fork_join_w%d_d%d_seed%d", width, depth, seed))
	b.Place("src", 2*tokens)
	for w := 0; w < width; w++ {
		for d := 0; d <= depth; d++ {
			b.Place(branchPlace(w, d), 0)
		}
	}
	fork := b.Trans("fork").In("src", 2).FiringConst(1)
	for w := 0; w < width; w++ {
		fork.Out(branchPlace(w, 0))
	}
	for w := 0; w < width; w++ {
		for d := 0; d < depth; d++ {
			t := b.Trans(fmt.Sprintf("b%d_t%d", w, d)).
				In(branchPlace(w, d)).Out(branchPlace(w, d+1)).
				Firing(delayFor(r))
			if r.Intn(3) == 0 {
				t.EnablingConst(1 + petri.Time(r.Intn(2)))
			}
		}
	}
	join := b.Trans("join").Out("src", 2).Firing(delayFor(r))
	for w := 0; w < width; w++ {
		join.In(branchPlace(w, depth))
	}
	return b.MustBuild()
}

func place(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

func branchPlace(w, d int) string { return fmt.Sprintf("b%d_p%d", w, d) }
