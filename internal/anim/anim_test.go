package anim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func tinyNet(t *testing.T) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("tiny")
	b.Place("a", 2)
	b.Place("b", 0)
	b.Trans("move").In("a", 2).Out("b").FiringConst(3)
	return b.MustBuild()
}

func TestAnimationFrames(t *testing.T) {
	net := tinyNet(t)
	var out strings.Builder
	a := New(net, &out, Options{FlowSteps: 2})
	if _, err := sim.Run(context.Background(), net, a, sim.Options{Horizon: 10}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Initial frame, 2 flow frames + settled for Start, same for End,
	// final frame: 8 frames.
	if a.Frames() != 8 {
		t.Errorf("frames = %d, want 8\n%s", a.Frames(), text)
	}
	for _, want := range []string{
		"initial state",
		"move starts firing",
		"move completes",
		"end of run",
		"a", "b",
		"[move]",
		"=>", // arc tracks
	} {
		if !strings.Contains(text, want) {
			t.Errorf("animation missing %q", want)
		}
	}
	// The weight-2 arc is drawn with its weight as the moving marker.
	if !strings.Contains(text, "2") {
		t.Error("weighted arc marker missing")
	}
	// Token flows over the arc: the marker must appear at different
	// positions in successive flow frames.
	lines := strings.Split(text, "\n")
	var positions []int
	for _, l := range lines {
		if strings.Contains(l, "=> [move]") {
			positions = append(positions, strings.IndexByte(l, '2'))
		}
	}
	if len(positions) != 2 || positions[0] == positions[1] {
		t.Errorf("marker did not move: %v", positions)
	}
}

func TestTokenDots(t *testing.T) {
	if tokenDots(0) != "" {
		t.Error("zero tokens should render empty")
	}
	if tokenDots(3) != "ooo" {
		t.Errorf("3 tokens: %q", tokenDots(3))
	}
	if got := tokenDots(20); !strings.Contains(got, "(+8)") {
		t.Errorf("overflow rendering: %q", got)
	}
}

func TestHideIdle(t *testing.T) {
	net := tinyNet(t)
	var out strings.Builder
	a := New(net, &out, Options{FlowSteps: 1, HideIdle: true})
	if _, err := sim.Run(context.Background(), net, a, sim.Options{Horizon: 10}); err != nil {
		t.Fatal(err)
	}
	// In the initial frame b is empty and must not appear on a state
	// panel line ("  b [0]").
	if strings.Contains(out.String(), "b [0]") {
		t.Error("idle place shown despite HideIdle")
	}
}

func TestMaxFramesStops(t *testing.T) {
	net := tinyNet(t)
	var out strings.Builder
	a := New(net, &out, Options{FlowSteps: 3, MaxFrames: 2})
	if _, err := sim.Run(context.Background(), net, a, sim.Options{Horizon: 10}); err != nil {
		t.Fatal(err)
	}
	if a.Frames() != 2 {
		t.Errorf("frames = %d, want 2", a.Frames())
	}
}

func TestStepFuncAbort(t *testing.T) {
	net := tinyNet(t)
	var out strings.Builder
	calls := 0
	boom := errors.New("stop")
	a := New(net, &out, Options{FlowSteps: 1, StepFunc: func() error {
		calls++
		if calls >= 2 {
			return boom
		}
		return nil
	}})
	_, err := sim.Run(context.Background(), net, a, sim.Options{Horizon: 10})
	if !errors.Is(err, boom) {
		t.Errorf("expected step abort to propagate, got %v", err)
	}
	if calls != 2 {
		t.Errorf("step calls = %d", calls)
	}
}

func TestFigure6PipelineAnimation(t *testing.T) {
	// Figure 6: animate the pipeline model itself for a short window.
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	a := New(net, &out, Options{FlowSteps: 2, HideIdle: true, MaxFrames: 120})
	if _, err := sim.Run(context.Background(), net, a, sim.Options{Horizon: 40, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Start_prefetch", "Decode", "Empty_I_buffers"} {
		if !strings.Contains(text, want) {
			t.Errorf("pipeline animation missing %q", want)
		}
	}
	if a.Frames() != 120 {
		t.Errorf("frames = %d, want the MaxFrames cap of 120", a.Frames())
	}
}
