// Package anim is the P-NUT animator (Section 4.3): a visual discrete
// event simulation of a trace. The paper's animator runs on a bitmap
// workstation; this one renders text frames, but it keeps the property
// the paper calls out as essential: tokens do not simply disappear and
// reappear — each firing is animated as tokens flowing *over the arcs*,
// in several intermediate frames, "to give the user time to understand
// the effect of state transitions".
//
// The animator consumes a trace (it implements trace.Observer) and
// emits frames to an io.Writer. FlowSteps controls how many in-between
// positions each token movement gets; single-stepping is available
// through the StepFunc hook, which the pnut-anim tool wires to "press
// enter to continue".
package anim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/petri"
	"repro/internal/trace"
)

// Options configure the animation.
type Options struct {
	// FlowSteps is the number of intermediate token positions drawn per
	// event (default 3). 1 draws a single frame per event.
	FlowSteps int
	// TrackWidth is the length of the arc track in characters
	// (default 24).
	TrackWidth int
	// HideIdle omits places that currently hold no tokens from the state
	// panel (keeps frames small for big nets).
	HideIdle bool
	// MaxFrames stops the animation after this many frames (0 =
	// unlimited); protects against animating a week-long trace by
	// accident.
	MaxFrames int
	// StepFunc, if non-nil, is called between frames: the single-step
	// hook. Returning an error aborts the animation.
	StepFunc func() error
}

// Animator renders trace records as animation frames.
type Animator struct {
	net    *petri.Net
	w      io.Writer
	opt    Options
	m      petri.Marking
	frames int
	err    error
}

// New returns an animator for net writing frames to w.
func New(net *petri.Net, w io.Writer, opt Options) *Animator {
	if opt.FlowSteps <= 0 {
		opt.FlowSteps = 3
	}
	if opt.TrackWidth <= 0 {
		opt.TrackWidth = 24
	}
	return &Animator{net: net, w: w, opt: opt, m: make(petri.Marking, net.NumPlaces())}
}

// Frames returns the number of frames emitted so far.
func (a *Animator) Frames() int { return a.frames }

// Record implements trace.Observer.
func (a *Animator) Record(rec *trace.Record) error {
	if a.err != nil {
		return a.err
	}
	switch rec.Kind {
	case trace.Initial:
		a.m = rec.Marking.Clone()
		a.err = a.frame(rec.Time, "initial state", nil, 0, 0)
	case trace.Start:
		a.err = a.animateEvent(rec, true)
	case trace.End:
		a.err = a.animateEvent(rec, false)
	case trace.Final:
		a.err = a.frame(rec.Time, fmt.Sprintf("end of run (%d events)", rec.Ends), nil, 0, 0)
	}
	return a.err
}

// animateEvent draws FlowSteps frames of tokens moving along arcs, then
// applies the deltas and draws the settled frame.
func (a *Animator) animateEvent(rec *trace.Record, isStart bool) error {
	tr := &a.net.Trans[rec.Trans]
	verb := "fires"
	if tr.Firing != nil {
		if isStart {
			verb = "starts firing"
		} else {
			verb = "completes"
		}
	}
	caption := fmt.Sprintf("%s %s", tr.Name, verb)
	for step := 1; step <= a.opt.FlowSteps; step++ {
		if err := a.frame(rec.Time, caption, rec, step, a.opt.FlowSteps); err != nil {
			return err
		}
	}
	for _, d := range rec.Deltas {
		a.m[d.Place] += d.Change
	}
	return a.frame(rec.Time, caption+" (settled)", nil, 0, 0)
}

func tokenDots(n int) string {
	const cap = 12
	if n <= 0 {
		return ""
	}
	if n <= cap {
		return strings.Repeat("o", n)
	}
	return fmt.Sprintf("%s(+%d)", strings.Repeat("o", cap), n-cap)
}

// frame renders one frame: header, state panel and (if rec != nil) the
// arc tracks with the moving token at position step/of.
func (a *Animator) frame(t petri.Time, caption string, rec *trace.Record, step, of int) error {
	if a.opt.MaxFrames > 0 && a.frames >= a.opt.MaxFrames {
		return nil
	}
	if a.opt.StepFunc != nil && a.frames > 0 {
		if err := a.opt.StepFunc(); err != nil {
			return err
		}
	}
	a.frames++
	var b strings.Builder
	fmt.Fprintf(&b, "─── frame %d  t=%d  %s\n", a.frames, t, caption)
	nameW := 0
	for _, p := range a.net.Places {
		if len(p.Name) > nameW {
			nameW = len(p.Name)
		}
	}
	for i, p := range a.net.Places {
		if a.opt.HideIdle && a.m[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-*s [%d] %s\n", nameW, p.Name, a.m[i], tokenDots(a.m[i]))
	}
	if rec != nil {
		tr := &a.net.Trans[rec.Trans]
		pos := a.opt.TrackWidth * step / (of + 1)
		track := func(from, to string, weight int) {
			line := strings.Repeat("-", a.opt.TrackWidth)
			marker := "o"
			if weight > 1 {
				marker = fmt.Sprintf("%d", weight)
			}
			p := pos
			if p+len(marker) > a.opt.TrackWidth {
				p = a.opt.TrackWidth - len(marker)
			}
			line = line[:p] + marker + line[p+len(marker):]
			fmt.Fprintf(&b, "  %-*s =%s=> %s\n", nameW, from, line, to)
		}
		if rec.Kind == trace.Start {
			for _, arc := range tr.In {
				track(a.net.Places[arc.Place].Name, "["+tr.Name+"]", arc.Weight)
			}
		} else {
			for _, arc := range tr.Out {
				track("["+tr.Name+"]", a.net.Places[arc.Place].Name, arc.Weight)
			}
		}
	}
	_, err := io.WriteString(a.w, b.String())
	return err
}
