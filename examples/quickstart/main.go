// Quickstart: build a small Timed Petri Net with the builder API,
// simulate it, and read performance numbers off the statistics tool.
//
// The net is the paper's Figure 1 situation in miniature: a bus shared
// by an instruction prefetcher and an operand fetcher, with the operand
// fetcher given priority through an inhibitor arc.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	// 1. Describe the net: places are conditions, transitions are
	// events with pre- and post-conditions.
	b := petri.NewBuilder("quickstart")
	b.Place("Bus_free", 1)
	b.Place("Bus_busy", 0)
	b.Place("prefetch_wanted", 1)
	b.Place("pre_fetching", 0)
	b.Place("operand_wanted", 0)
	b.Place("fetching", 0)
	b.Place("work", 0)

	// The prefetcher takes the bus only when no operand fetch is
	// waiting (inhibitor arc = the dark bubble of Figure 1).
	b.Trans("Start_prefetch").
		In("prefetch_wanted").In("Bus_free").
		Inhib("operand_wanted").
		Out("pre_fetching").Out("Bus_busy")
	b.Trans("End_prefetch").
		In("pre_fetching").In("Bus_busy").
		Out("prefetch_wanted").Out("Bus_free").Out("work").
		EnablingConst(5) // a memory access takes 5 cycles

	// Each prefetched word triggers one operand fetch a little later.
	b.Trans("need_operand").
		In("work").
		Out("operand_wanted").
		EnablingConst(3)
	b.Trans("Start_operand_fetch").
		In("operand_wanted").In("Bus_free").
		Out("fetching").Out("Bus_busy")
	b.Trans("End_operand_fetch").
		In("fetching").In("Bus_busy").
		Out("Bus_free").
		EnablingConst(5)

	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net)

	// 2. Simulate for 10 000 cycles, streaming the trace into the
	// statistics tool (no intermediate file, exactly as the paper's
	// tools plug together).
	s := stats.New(trace.HeaderOf(net))
	res, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d cycles, %d events\n\n", res.Clock, res.Ends)

	// 3. Read the analysis: bus utilization is the average token count
	// of Bus_busy; the activity split is on the two activity places.
	if err := s.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}
	bus, _ := s.Utilization("Bus_busy")
	pre, _ := s.Utilization("pre_fetching")
	op, _ := s.Utilization("fetching")
	fmt.Printf("\nbus utilization %.3f = prefetch %.3f + operand %.3f\n", bus, pre, op)
}
