// Example grid: the distributed face of the sweep driver. The same
// cache-study grid runs three ways — in process, split across four
// simulated "worker processes" (shards round-tripping every cell
// through the JSONL record codec), and killed halfway then resumed from
// its journal — and all three produce byte-identical results.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dist"
	"repro/internal/experiment"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func main() {
	opt := experiment.SweepOptions{
		Axes: []experiment.Axis{
			{Name: "DHitRatio", Values: []float64{0, 0.5, 0.9, 1}},
			{Name: "MemoryCycles", Values: []float64{1, 5}},
		},
		Reps:     4,
		BaseSeed: 1988,
		Sim:      sim.Options{Horizon: 5_000},
		Metrics: []experiment.Metric{
			experiment.Throughput("Issue"),
			experiment.Utilization("Bus_busy"),
		},
		Build: func(pt experiment.Point) (*petri.Net, error) {
			return pipeline.SweepProcessor(true, pt.Names, pt.Values)
		},
	}

	// In process: the reference result.
	ref, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process: %d points x %d reps, %d events\n", len(ref.Points), ref.Reps, ref.Events)

	// Distributed across 4 shards. LocalRunner stands in for worker
	// processes and still round-trips every cell record through the
	// JSONL codec, so this exercises exactly the distributed encoding;
	// swap in dist.NewExecRunner to spawn real pnut-sweep processes.
	r, err := dist.Execute(context.Background(), opt, dist.Options{
		Shards: 4,
		Runner: dist.LocalRunner(opt),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 shards:   identical to in-process: %v\n", csvOf(r) == csvOf(ref))

	// Kill one shard halfway into a journaled run: the run fails, the
	// journal keeps every completed cell.
	journal := filepath.Join(os.TempDir(), "grid-example.jsonl")
	os.Remove(journal)
	defer os.Remove(journal)
	victim := opt.NumCells() / 2
	_, err = dist.Execute(context.Background(), opt, dist.Options{
		Shards: 4,
		Runner: func(ctx context.Context, span dist.Span, emit func(experiment.CellRecord) error) error {
			return dist.LocalRunner(opt)(ctx, span, func(rec experiment.CellRecord) error {
				if rec.Cell == victim {
					return fmt.Errorf("worker killed")
				}
				return emit(rec)
			})
		},
		Journal: journal,
	})
	fmt.Printf("killed:     run failed as expected: %v\n", err != nil)

	// Resume: only the missing cells re-run, the output is unchanged.
	var log2 strings.Builder
	r2, err := dist.Execute(context.Background(), opt, dist.Options{
		Shards:  4,
		Runner:  dist.LocalRunner(opt),
		Journal: journal,
		Log:     &log2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed:    identical after resume: %v\n", csvOf(r2) == csvOf(ref))
	fmt.Print(log2.String())

	if err := r2.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func csvOf(r *experiment.SweepResult) string {
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		log.Fatal(err)
	}
	return b.String()
}
