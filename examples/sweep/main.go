// Example sweep: reproduce the paper's two parameter studies — the
// Section 3 cache-hit-ratio sweep and the introduction's memory-speed
// claim — as one two-axis grid through the sharded sweep driver, then
// demonstrate that the worker count does not change a single byte of
// the results.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiment"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func main() {
	opt := experiment.SweepOptions{
		Axes: []experiment.Axis{
			{Name: "DHitRatio", Values: []float64{0, 0.5, 0.9, 1}},
			{Name: "MemoryCycles", Values: []float64{1, 5, 12}},
		},
		Reps:     8,
		BaseSeed: 1988,
		Sim:      sim.Options{Horizon: 10_000},
		Metrics: []experiment.Metric{
			experiment.Throughput("Issue"),
			experiment.Utilization("Bus_busy"),
		},
		Build: func(pt experiment.Point) (*petri.Net, error) {
			return pipeline.SweepProcessor(true, pt.Names, pt.Values)
		},
	}

	r, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d points x %d replications on %d workers (%d cores) in %s\n",
		len(r.Points), r.Reps, r.Workers, runtime.GOMAXPROCS(0), r.Elapsed.Round(0))
	if err := r.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Re-run serially: the full CSV encoding must be byte-identical.
	parallelCSV := csvOf(r)
	opt.Workers = 1
	serial, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}
	if csvOf(serial) == parallelCSV {
		fmt.Println("serial and parallel sweep results are byte-identical")
	} else {
		fmt.Println("BUG: worker count changed the results")
	}
}

func csvOf(r *experiment.SweepResult) string {
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		log.Fatal(err)
	}
	return b.String()
}
