// Interpreted: the Section 3 argument, executed. Modeling each
// instruction type with its own subnet makes the net grow with the
// instruction set; a table-driven interpreted net (Figure 4) keeps the
// net fixed while predicates and actions carry the instruction-set
// detail. This example builds interpreted models for growing
// instruction sets, shows the net size staying constant, and runs one.
//
//	go run ./examples/interpreted
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// explode repeats the base instruction set n times (distinct types with
// identical behaviour), emulating ever-richer instruction sets.
func explode(base pipeline.InstructionSet, n int) pipeline.InstructionSet {
	out := pipeline.InstructionSet{
		Operands:   []int64{0},
		ExtraWords: []int64{0},
		ExecCycles: []int64{0},
	}
	for i := 0; i < n; i++ {
		out.Operands = append(out.Operands, base.Operands[1:]...)
		out.ExtraWords = append(out.ExtraWords, base.ExtraWords[1:]...)
		out.ExecCycles = append(out.ExecCycles, base.ExecCycles[1:]...)
	}
	return out
}

func main() {
	p := pipeline.DefaultParams()
	base := pipeline.DefaultInstructionSet()

	fmt.Println("net size as the instruction set grows (the Section 3 claim):")
	fmt.Printf("  %-28s %8s %8s %12s\n", "instruction set", "types", "places", "transitions")
	for _, n := range []int{1, 2, 4, 8} {
		is := explode(base, n)
		net, err := pipeline.InterpretedProcessor(p, is)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %8d %8d %12d\n",
			fmt.Sprintf("base x%d", n), is.MaxType(), net.NumPlaces(), net.NumTrans())
	}
	// For contrast: the explicit Section 2 model spends 5 transitions on
	// just 5 execution-time classes; per-type subnets would add ~4
	// transitions per type.
	explicit, err := pipeline.Processor(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %8s %8d %12d\n", "explicit per-type model", "3+5", explicit.NumPlaces(), explicit.NumTrans())

	fmt.Println("\nrunning the interpreted model for 10 000 cycles:")
	net, err := pipeline.InterpretedProcessor(p, base)
	if err != nil {
		log.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	res, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	issue, _ := s.Throughput("Issue")
	bus, _ := s.Utilization("Bus_busy")
	fmt.Printf("  %d events, %.4f instructions/cycle, bus utilization %.4f\n",
		res.Ends, issue, bus)
	fmt.Printf("  final decode variables: type=%d operands_left=%d words_left=%d\n",
		res.Vars["type"], res.Vars["number_of_operands_needed"], res.Vars["words_needed"])
}
