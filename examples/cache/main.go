// Cache: the Section 3 cache extension and the introduction's claim
// that "memory speed and processor clock rate can have a strong yet
// difficult to predict impact". The example sweeps the data-cache hit
// ratio and the memory latency and prints how instruction rate and bus
// utilization respond.
//
//	go run ./examples/cache
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func measure(p pipeline.Params, c *pipeline.CacheParams) (ipc, bus float64) {
	net, err := pipeline.Processor(p)
	if c != nil {
		net, err = pipeline.CacheProcessor(p, *c)
	}
	if err != nil {
		log.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 30_000, Seed: 13}); err != nil {
		log.Fatal(err)
	}
	ipc, _ = s.Throughput("Issue")
	bus, _ = s.Utilization("Bus_busy")
	return ipc, bus
}

func main() {
	p := pipeline.DefaultParams()

	fmt.Println("data-cache hit-ratio sweep (icache fixed at 0.9, memory = 5 cycles):")
	fmt.Printf("  %8s %12s %10s\n", "dhit", "instr/cycle", "bus util")
	for _, hit := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} {
		c := pipeline.DefaultCacheParams()
		c.DHitRatio = hit
		ipc, bus := measure(p, &c)
		fmt.Printf("  %8.2f %12.4f %10.4f\n", hit, ipc, bus)
	}

	fmt.Println("\nmemory-latency sweep (no caches — the base Section 2 model):")
	fmt.Printf("  %8s %12s %10s\n", "cycles", "instr/cycle", "bus util")
	for _, mem := range []int64{1, 2, 3, 5, 8, 12} {
		pm := p
		pm.MemoryCycles = mem
		ipc, bus := measure(pm, nil)
		fmt.Printf("  %8d %12.4f %10.4f\n", mem, ipc, bus)
	}
	fmt.Println("\nnote how the rate falls and the bus saturates as memory slows —")
	fmt.Println("the interaction the paper's introduction calls hard to predict.")
}
