// Protocol: enabling times as timeout models. Section 1 notes that the
// enabling time "is particularly convenient for modeling timeouts in
// communications protocols" — the timer runs only while its
// pre-conditions stay true, so an acknowledgement arriving in time
// disables the retransmit transition and resets its clock, exactly like
// a protocol timer.
//
// The model is a stop-and-wait sender over a lossy channel: send,
// await ack; the ack inhibits the timeout; a lost message leaves the
// timeout enabled until it fires and retransmits.
//
//	go run ./examples/protocol
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/petri"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func build(lossPercent float64) *petri.Net {
	b := petri.NewBuilder("stop_and_wait")
	b.Place("ready", 1)      // sender may transmit
	b.Place("awaiting", 0)   // sender waits for the ack
	b.Place("in_flight", 0)  // message on the channel
	b.Place("ack_flight", 0) // ack on the channel
	b.Place("delivered", 0)  // receiver got it (counts deliveries)
	b.Place("retransmits", 0)

	b.Trans("send").
		In("ready").
		Out("awaiting").Out("in_flight")
	// The channel either delivers in 3 ticks or loses the message.
	b.Trans("deliver").
		In("in_flight").
		Out("delivered").Out("ack_flight").
		EnablingConst(3).
		Freq(100 - lossPercent)
	b.Trans("lose").
		In("in_flight").
		EnablingConst(3).
		Freq(lossPercent)
	// The ack takes 3 more ticks back.
	b.Trans("ack").
		In("ack_flight").In("awaiting").
		Out("ready").
		EnablingConst(3)
	// The timeout (10 ticks) runs only while the sender is awaiting and
	// nothing is in flight to it; a timely ack removes `awaiting` and
	// resets the timer — the enabling-time semantics.
	b.Trans("timeout").
		In("awaiting").
		Inhib("ack_flight").
		Out("ready").Out("retransmits").
		EnablingConst(10)
	return b.MustBuild()
}

func main() {
	for _, loss := range []float64{0, 10, 30, 50} {
		net := build(loss)
		h := trace.HeaderOf(net)
		s := stats.New(h)
		qb := query.NewBuilder(h)
		if _, err := sim.Run(context.Background(), net, trace.Tee{s, qb}, sim.Options{Horizon: 50_000, Seed: 3}); err != nil {
			log.Fatal(err)
		}
		sends, _ := s.EventRowByName("send")
		timeouts, _ := s.EventRowByName("timeout")
		delivered, _ := s.Throughput("deliver")
		fmt.Printf("loss %2.0f%%: %5d sends, %5d timeouts, goodput %.4f msgs/tick\n",
			loss, sends.Ends, timeouts.Ends, delivered)

		// Verification: whenever a message is awaiting, the sender
		// inevitably becomes ready again (ack or timeout) — no deadlock
		// in this run.
		res, err := query.Check(qb.Seq(),
			"forall s in {s2 in S | awaiting(s2) && time(s2) < 49900} [ inev(s, ready(C) > 0) ]")
		if err != nil {
			log.Fatal(err)
		}
		if !res.Holds {
			fmt.Printf("  WARNING: liveness query failed at state %d\n", res.Witness)
		}
	}
	fmt.Println("\ntimeouts scale with loss; goodput degrades gracefully —")
	fmt.Println("the timeout timer never fires when the ack arrives within 6 ticks.")
}
