// Pipeline: the paper's Section 2 experiment as a library client — the
// 3-stage pipelined microprocessor, 10 000 cycles, Figure 5 statistics,
// Figure 7 timing analysis, and the Section 4.4 verification queries.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracer"
)

func main() {
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// One simulation run feeds both analyses: statistics and the state
	// sequence for Tracertool/queries.
	h := trace.HeaderOf(net)
	s := stats.New(h)
	qb := query.NewBuilder(h)
	if _, err := sim.Run(context.Background(), net, trace.Tee{s, qb}, sim.Options{Horizon: 10_000, Seed: 1988}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Figure 5: performance statistics report ===")
	if err := s.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}
	issue, _ := s.Throughput("Issue")
	fmt.Printf("\ninstruction processing rate: %.4f instructions/cycle (paper: 0.1238)\n", issue)

	fmt.Println("\n=== Figure 7: Tracertool timing analysis (first 400 cycles) ===")
	tr, err := tracer.Figure7(qb.Seq())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tr.MarkWhen("O", "Bus_busy > 0", 0); err != nil {
		log.Fatal(err)
	}
	if _, err := tr.MarkWhen("X", "storing > 0", 0); err != nil {
		log.Fatal(err)
	}
	fmt.Print(tr.Render(tracer.RenderOptions{From: 0, To: 400, Width: 96}))

	fmt.Println("\n=== Section 4.4: verification queries ===")
	for _, q := range []string{
		"forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]",
		"forall s in S [ inev(s, Bus_busy(C) + Bus_free(C) == 1) ]",
		"exists s in (S - {#0}) [ Empty_I_buffers(s) == 6 ]",
		"exists s in S [ exec_type_5(s) > 0 ]",
		"forall s in {s2 in S | Bus_busy(s2) && time(s2) < 9990} [ inev(s, Bus_free(C), true) ]",
	} {
		res, err := tr.Verify(q)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "HOLDS"
		if !res.Holds {
			verdict = "FAILS"
		}
		fmt.Printf("%s  %s\n", verdict, q)
	}
}
