// Example experiment: replicate the paper's Figure 5 run 32 times in
// parallel and report instruction rate and bus utilization with 95%
// confidence intervals — then demonstrate that the worker count does
// not change a single digit of the pooled statistics.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"strings"

	"repro/internal/experiment"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func main() {
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	opt := experiment.Options{
		Reps:     32,
		BaseSeed: 1988,
		Sim:      sim.Options{Horizon: 10_000},
		Metrics: []experiment.Metric{
			experiment.Throughput("Issue"),
			experiment.Utilization("Bus_busy"),
		},
	}

	r, err := experiment.Run(context.Background(), net, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d replications on %d workers (%d cores) in %s\n",
		r.Reps, r.Workers, runtime.GOMAXPROCS(0), r.Elapsed.Round(0))
	fmt.Printf("  instruction rate  %s\n", r.Summaries[0])
	fmt.Printf("  bus utilization   %s\n", r.Summaries[1])

	// Re-run serially: the pooled report must be byte-identical.
	parallelReport := report(r)
	opt.Workers = 1
	serial, err := experiment.Run(context.Background(), net, opt)
	if err != nil {
		log.Fatal(err)
	}
	if report(serial) == parallelReport {
		fmt.Println("serial and parallel pooled statistics are byte-identical")
	} else {
		fmt.Println("BUG: worker count changed the results")
	}
}

func report(r *experiment.Result) string {
	var b strings.Builder
	if err := r.Pooled.Report(&b); err != nil {
		log.Fatal(err)
	}
	return b.String()
}
