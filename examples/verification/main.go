// Verification: Section 4.4's debugging story, executed. "An error in
// the model (for example a non-zero timing in a transition) may cause a
// token to be removed from both places at the same time" — here we
// build the bus model twice: once correctly (instantaneous handoffs)
// and once with exactly that bug (a firing time on the transition that
// moves the token from Bus_free to Bus_busy), and show how each layer
// of the toolset catches it:
//
//  1. the trace query `forall s in S [Bus_busy(s)+Bus_free(s) <= 1 ]`
//     plus the settledness query find the anomaly in one simulation run;
//
//  2. the reachability analyzer *proves* the invariant for the correct
//     model and produces a counterexample state for the buggy one;
//
//  3. the statistics silently look plausible in both — the paper's
//     warning about validating models by eyeballing performance data.
//
//     go run ./examples/verification
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/petri"
	"repro/internal/query"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// busModel builds a two-customer bus; handoffTime injects the bug.
func busModel(handoffTime petri.Time) *petri.Net {
	b := petri.NewBuilder("bus_model")
	b.Place("Bus_free", 1)
	b.Place("Bus_busy", 0)
	b.Place("want", 2)
	b.Place("using", 0)
	b.Place("done", 0)
	tb := b.Trans("take").In("want").In("Bus_free").Out("using").Out("Bus_busy")
	if handoffTime > 0 {
		tb.FiringConst(handoffTime) // THE BUG: the handoff is not instantaneous
	}
	b.Trans("release").In("using").In("Bus_busy").Out("done").Out("Bus_free").EnablingConst(5)
	b.Trans("recycle").In("done").Out("want").EnablingConst(2)
	return b.MustBuild()
}

func main() {
	for _, cfg := range []struct {
		name    string
		handoff petri.Time
	}{
		{"correct model (instantaneous handoff)", 0},
		{"buggy model (firing time 2 on the handoff)", 2},
	} {
		fmt.Printf("=== %s ===\n", cfg.name)
		net := busModel(cfg.handoff)

		// 1. Simulation + trace queries.
		h := trace.HeaderOf(net)
		s := stats.New(h)
		qb := query.NewBuilder(h)
		if _, err := sim.Run(context.Background(), net, trace.Tee{s, qb}, sim.Options{Horizon: 5_000, Seed: 1}); err != nil {
			log.Fatal(err)
		}
		seq := qb.Seq()
		// In a correct model the bus token is out of both places only
		// for an instant (a zero-duration state between the Start and
		// End records of the handoff); in the buggy model the token is
		// gone for 2 whole ticks. dur(s) — the logic analyzer's pulse
		// width — separates the two in a single simulation run.
		res, err := query.Check(seq,
			"exists s in S [ Bus_busy(s) + Bus_free(s) == 0 && dur(s) > 0 ]")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  query: bus token missing for measurable time: %v", res.Holds)
		if res.Witness >= 0 {
			fmt.Printf("   (witness #%d at t=%d)", res.Witness, seq.States[res.Witness].Time)
		}
		fmt.Println()
		util, _ := s.Utilization("Bus_busy")
		th, _ := s.Throughput("release")
		fmt.Printf("  stats alone look plausible either way: bus util %.3f, throughput %.3f\n", util, th)

		// 2. Reachability: prove or refute over ALL behaviours. In the
		// timed graph the buggy model has a state where the token is
		// absent from both places AND time can pass (a time-advance
		// edge) — the correct model's in-limbo states pass in zero time.
		tg, err := reach.BuildTimed(context.Background(), net, reach.Options{})
		if err != nil {
			log.Fatal(err)
		}
		broken := reach.MustAtom("Bus_busy + Bus_free == 0")
		holdsSomewhere := reach.Holds(tg, reach.EF(broken))
		// Does a broken state persist across a time advance?
		persists := false
		for _, node := range tg.Nodes {
			sum := 0
			if id, ok := net.PlaceID("Bus_busy"); ok {
				sum += node.Marking[id]
			}
			if id, ok := net.PlaceID("Bus_free"); ok {
				sum += node.Marking[id]
			}
			if sum != 0 {
				continue
			}
			for _, e := range node.Out {
				if e.Trans == reach.TimeAdvance && e.Delta > 0 {
					persists = true
				}
			}
		}
		fmt.Printf("  reachability: token-less state exists: %v; persists across time: %v\n",
			holdsSomewhere, persists)
		if persists {
			fmt.Printf("  -> BUG: the bus vanishes for measurable time; fix: make the handoff instantaneous\n")
		}
		fmt.Println()
	}
}
