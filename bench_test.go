// Package repro's benchmark harness regenerates every figure and table
// of the paper's evaluation (Section 4). One benchmark per artifact:
//
//	BenchmarkFig1Prefetch          — Figure 1 subnet simulation
//	BenchmarkFig2Decoder           — Figure 2 subnet simulation
//	BenchmarkFig3Execution         — Figure 3 subnet simulation
//	BenchmarkFig4Interpreted       — Figure 4 interpreted net
//	BenchmarkFig5Statistics        — the Figure 5 statistics report (headline)
//	BenchmarkFig6Animation         — Figure 6 animation frames
//	BenchmarkFig7Tracer            — Figure 7 Tracertool timing analysis
//	BenchmarkSec44Queries          — the four Section 4.4 queries
//	BenchmarkCacheSweep            — Section 3 cache extension
//	BenchmarkMemorySpeedSweep      — the introduction's memory-speed claim
//	BenchmarkAdaptiveSweep         — CI-targeted stopping vs BenchmarkSweepFixedMax
//	BenchmarkBaselineSequential    — non-pipelined baseline
//	BenchmarkAblationTimeEncoding  — firing-time vs enabling-time encoding
//	BenchmarkAblationInterpreted   — explicit vs table-driven nets
//	BenchmarkReachability          — reachability analyzer on the pipeline net
//
// Headline metrics are attached with b.ReportMetric (instructions per
// cycle, bus utilization, ...) so `go test -bench=. -benchmem` prints
// the paper's numbers next to the timing. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package repro

import (
	"context"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/anim"
	"repro/internal/dist"
	"repro/internal/experiment"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweepcli"
	"repro/internal/trace"
	"repro/internal/tracer"
)

const paperCycles = 10_000

// The helpers below are shared by every benchmark AND by the
// test-mode correctness gates (TestBenchmarkShapesHold), so they take
// testing.TB — one implementation, no bench/test duplication, and no
// silently dropped errors: a metric that cannot be evaluated fails the
// run instead of reporting a stale zero.

func mustProcessor(tb testing.TB, p pipeline.Params) *petri.Net {
	tb.Helper()
	net, err := pipeline.Processor(p)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// runStats simulates a net for n cycles and returns the stats.
func runStats(tb testing.TB, net *petri.Net, cycles int64, seed int64) *stats.Stats {
	tb.Helper()
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: cycles, Seed: seed}); err != nil {
		tb.Fatal(err)
	}
	return s
}

// mustThroughput and mustUtilization read a metric off a run's stats,
// failing loudly on unknown names.
func mustThroughput(tb testing.TB, s *stats.Stats, transition string) float64 {
	tb.Helper()
	v, err := s.Throughput(transition)
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

func mustUtilization(tb testing.TB, s *stats.Stats, place string) float64 {
	tb.Helper()
	v, err := s.Utilization(place)
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

// BenchmarkFig1Prefetch regenerates the Figure 1 experiment: the
// prefetch subnet alone. Reported: prefetch bus usage (the subnet
// saturates the bus at 2 words / 5 cycles).
func BenchmarkFig1Prefetch(b *testing.B) {
	net, err := pipeline.Prefetch(pipeline.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var s *stats.Stats
	for i := 0; i < b.N; i++ {
		s = runStats(b, net, paperCycles, 1)
	}
	b.ReportMetric(mustUtilization(b, s, "pre_fetching"), "prefetch_util")
	b.ReportMetric(mustThroughput(b, s, "Decode"), "decode_rate")
}

// BenchmarkFig2Decoder regenerates the Figure 2 experiment: decode,
// address calculation, operand fetch. Reported: issue rate of stage 2 in
// isolation.
func BenchmarkFig2Decoder(b *testing.B) {
	net, err := pipeline.Decoder(pipeline.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var s *stats.Stats
	for i := 0; i < b.N; i++ {
		s = runStats(b, net, paperCycles, 1)
	}
	b.ReportMetric(mustThroughput(b, s, "Issue"), "issue_rate")
}

// BenchmarkFig3Execution regenerates the Figure 3 experiment: the
// execution unit with the 1-2-5-10-50 service distribution and result
// stores. Reported: execution throughput in isolation.
func BenchmarkFig3Execution(b *testing.B) {
	net, err := pipeline.Execution(pipeline.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var s *stats.Stats
	for i := 0; i < b.N; i++ {
		s = runStats(b, net, paperCycles, 1)
	}
	b.ReportMetric(mustThroughput(b, s, "Issue"), "issue_rate")
}

// BenchmarkFig4Interpreted regenerates the Figure 4 experiment: the
// table-driven interpreted pipeline.
func BenchmarkFig4Interpreted(b *testing.B) {
	net, err := pipeline.InterpretedProcessor(pipeline.DefaultParams(), pipeline.DefaultInstructionSet())
	if err != nil {
		b.Fatal(err)
	}
	var s *stats.Stats
	for i := 0; i < b.N; i++ {
		s = runStats(b, net, paperCycles, 11)
	}
	b.ReportMetric(mustThroughput(b, s, "Issue"), "issue_rate")
}

// BenchmarkFig5Statistics is the headline: the full Section 2 model for
// 10 000 cycles plus the statistics report of Figure 5. Reported
// metrics: instruction rate (paper: 0.1238) and bus utilization
// (paper: 0.6582).
func BenchmarkFig5Statistics(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	var s *stats.Stats
	for i := 0; i < b.N; i++ {
		s = runStats(b, net, paperCycles, 1988)
		if err := s.Report(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustThroughput(b, s, "Issue"), "instr_per_cycle")
	b.ReportMetric(mustUtilization(b, s, "Bus_busy"), "bus_util")
}

// BenchmarkFig6Animation regenerates the Figure 6 experiment: animating
// the pipeline model with token flow over arcs.
func BenchmarkFig6Animation(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	frames := 0
	for i := 0; i < b.N; i++ {
		a := anim.New(net, io.Discard, anim.Options{FlowSteps: 3, HideIdle: true})
		if _, err := sim.Run(context.Background(), net, a, sim.Options{Horizon: 100, Seed: 1}); err != nil {
			b.Fatal(err)
		}
		frames = a.Frames()
	}
	b.ReportMetric(float64(frames), "frames")
}

// BenchmarkFig7Tracer regenerates the Figure 7 experiment: the standard
// probe set rendered over a 400-cycle window with two cursors.
func BenchmarkFig7Tracer(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	qb := query.NewBuilder(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, qb, sim.Options{Horizon: paperCycles, Seed: 1988}); err != nil {
		b.Fatal(err)
	}
	seq := qb.Seq()
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := tracer.Figure7(seq)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tr.MarkWhen("O", "Bus_busy > 0", 0); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.MarkWhen("X", "storing > 0", 0); err != nil {
			b.Fatal(err)
		}
		out = tr.Render(tracer.RenderOptions{From: 0, To: 400, Width: 96})
	}
	b.ReportMetric(float64(strings.Count(out, "\n")), "plot_rows")
}

// BenchmarkSec44Queries runs the paper's four verification queries over
// a full 10 000-cycle trace.
func BenchmarkSec44Queries(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	qb := query.NewBuilder(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, qb, sim.Options{Horizon: paperCycles, Seed: 1988}); err != nil {
		b.Fatal(err)
	}
	seq := qb.Seq()
	queries := []string{
		"forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]",
		"exists s in (S - {#0}) [ Empty_I_buffers(s) == 6 ]",
		"exists s in S [ exec_type_5(s) > 0 ]",
		"forall s in {s2 in S | Bus_busy(s2) && time(s2) < 9990} [ inev(s, Bus_free(C), true) ]",
	}
	b.ResetTimer()
	holds := 0
	for i := 0; i < b.N; i++ {
		holds = 0
		for _, q := range queries {
			res, err := query.Check(seq, q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Holds {
				holds++
			}
		}
	}
	b.ReportMetric(float64(holds), "queries_holding")
}

// cacheBuild is the sweep Build hook over the cached pipeline: axis
// names are pipeline/cache parameter names.
func cacheBuild(pt experiment.Point) (*petri.Net, error) {
	return pipeline.SweepProcessor(true, pt.Names, pt.Values)
}

// mustSweep runs one sweep through the sharded driver, failing the
// benchmark on any error.
func mustSweep(tb testing.TB, opt experiment.SweepOptions) *experiment.SweepResult {
	tb.Helper()
	r, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// BenchmarkCacheSweep regenerates the Section 3 cache study through the
// sweep driver: data-cache hit ratio from 0 to 1 against instruction
// rate, one grid point per ratio.
func BenchmarkCacheSweep(b *testing.B) {
	opt := experiment.SweepOptions{
		Axes:     []experiment.Axis{{Name: "DHitRatio", Values: []float64{0, 0.5, 0.9, 1}}},
		Reps:     2,
		BaseSeed: 13,
		Sim:      sim.Options{Horizon: paperCycles},
		Metrics:  []experiment.Metric{experiment.Throughput("Issue")},
		Build:    cacheBuild,
	}
	var r *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		r = mustSweep(b, opt)
	}
	b.ReportMetric(r.Points[len(r.Points)-1].Summaries[0].Mean, "ipc_at_hit1")
}

// BenchmarkMemorySpeedSweep regenerates the introduction's claim
// through the sweep driver: memory speed has a strong impact on
// processor performance. Reported: the throughput ratio between
// 1-cycle and 12-cycle memory.
func BenchmarkMemorySpeedSweep(b *testing.B) {
	opt := experiment.SweepOptions{
		Axes:     []experiment.Axis{{Name: "MemoryCycles", Values: []float64{1, 12}}},
		Reps:     2,
		BaseSeed: 4,
		Sim:      sim.Options{Horizon: paperCycles},
		Metrics:  []experiment.Metric{experiment.Throughput("Issue")},
		Build: func(pt experiment.Point) (*petri.Net, error) {
			return pipeline.SweepProcessor(false, pt.Names, pt.Values)
		},
	}
	var r *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		r = mustSweep(b, opt)
	}
	fast, slow := r.Points[0].Summaries[0].Mean, r.Points[1].Summaries[0].Mean
	if slow > 0 {
		b.ReportMetric(fast/slow, "speedup_fast_vs_slow_mem")
	}
}

// sweepBench runs the reference 4-point x 4-replication cache grid (16
// cells) through the sweep driver and reports completed events per
// second.
func sweepBench(b *testing.B, workers int) {
	opt := experiment.SweepOptions{
		Axes: []experiment.Axis{
			{Name: "DHitRatio", Values: []float64{0.5, 0.9}},
			{Name: "MemoryCycles", Values: []float64{1, 5}},
		},
		Reps:     4,
		Workers:  workers,
		BaseSeed: 1988,
		Sim:      sim.Options{Horizon: paperCycles},
		Metrics:  []experiment.Metric{experiment.Throughput("Issue")},
		Build:    cacheBuild,
	}
	var events int64
	var elapsed float64
	for i := 0; i < b.N; i++ {
		r := mustSweep(b, opt)
		events = r.Events
		elapsed = r.Elapsed.Seconds()
	}
	b.ReportMetric(float64(events)/elapsed, "events/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// gridBenchConfig is the reference 16-cell grid of sweepBench as a CLI
// config, so the distributed benchmarks launch workers with exactly the
// same sweep shape.
func gridBenchConfig() sweepcli.Config {
	return sweepcli.Config{
		Model:       "cache",
		RunFlags:    sweepcli.RunFlags{Horizon: paperCycles, Seed: 1988},
		Reps:        4,
		Axes:        sweepcli.Repeated{"DHitRatio=0.5,0.9", "MemoryCycles=1,5"},
		MetricFlags: sweepcli.MetricFlags{Throughputs: sweepcli.Repeated{"Issue"}},
	}
}

// gridBench runs the reference grid through the distributed coordinator
// and reports completed events per second, like sweepBench.
func gridBench(b *testing.B, shards int, runner dist.Runner) {
	cfg := gridBenchConfig()
	opt, _, err := cfg.Options()
	if err != nil {
		b.Fatal(err)
	}
	var events int64
	var elapsed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := dist.Execute(context.Background(), opt, dist.Options{Shards: shards, Runner: runner})
		if err != nil {
			b.Fatal(err)
		}
		events = r.Events
		elapsed = r.Elapsed.Seconds()
	}
	b.ReportMetric(float64(events)/elapsed, "events/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// BenchmarkGridLocal isolates the cell-record codec: the same 16 cells
// as BenchmarkSweepParallel, but every cell round-trips through the
// JSONL encoding. Compare ns/op against BenchmarkSweepParallel for the
// pure serialization overhead.
func BenchmarkGridLocal(b *testing.B) {
	cfg := gridBenchConfig()
	opt, _, err := cfg.Options()
	if err != nil {
		b.Fatal(err)
	}
	gridBench(b, 2, dist.LocalRunner(opt))
}

// BenchmarkGridDistributed runs the same grid across 2 real worker
// processes (pnut-sweep -emit cells), quantifying the full per-process
// overhead — spawn, pipe, JSONL round-trip — against
// BenchmarkSweepParallel's in-process pool.
func BenchmarkGridDistributed(b *testing.B) {
	cfg := gridBenchConfig()
	opt, name, err := cfg.Options()
	if err != nil {
		b.Fatal(err)
	}
	bin := filepath.Join(b.TempDir(), "pnut-sweep")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pnut-sweep").CombinedOutput(); err != nil {
		b.Fatalf("building worker: %v\n%s", err, out)
	}
	meta := experiment.MetaOf(opt, name)
	runner, err := dist.NewExecRunner(append([]string{bin}, cfg.WorkerArgs(0)...), &meta, nil)
	if err != nil {
		b.Fatal(err)
	}
	gridBench(b, 2, runner)
}

// adaptiveBenchOptions is a mixed-variance cache grid under the
// CI-targeted stopping rule: at this horizon and 5% relative-precision
// target the points converge at visibly different replication counts,
// so adaptive stopping pays off.
func adaptiveBenchOptions() experiment.SweepOptions {
	return experiment.SweepOptions{
		Axes: []experiment.Axis{{Name: "DHitRatio", Values: []float64{0, 0.5, 0.9, 1}}},
		Adaptive: &experiment.AdaptiveOptions{
			Metric:  "throughput(Issue)",
			RelCI:   0.05,
			MinReps: 3,
			MaxReps: 32,
			Batch:   2,
		},
		BaseSeed: 7,
		Sim:      sim.Options{Horizon: 2_000},
		Metrics:  []experiment.Metric{experiment.Throughput("Issue")},
		Build:    cacheBuild,
	}
}

// BenchmarkAdaptiveSweep runs the mixed-variance grid with adaptive
// replication. Compare total_reps (and ns/op) against
// BenchmarkSweepFixedMax, which buys the same worst-case precision by
// running every point at MaxReps — the adaptive run reaches the
// precision target on a fraction of the replications.
func BenchmarkAdaptiveSweep(b *testing.B) {
	opt := adaptiveBenchOptions()
	var r *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		r = mustSweep(b, opt)
	}
	b.ReportMetric(float64(r.TotalReps), "total_reps")
	b.ReportMetric(float64(len(r.Points)*opt.Adaptive.MaxReps), "fixed_reps")
}

// BenchmarkSweepFixedMax is BenchmarkAdaptiveSweep's fixed-count
// baseline: the same grid, seeds and horizon, but every point runs
// MaxReps replications regardless of variance.
func BenchmarkSweepFixedMax(b *testing.B) {
	opt := adaptiveBenchOptions()
	opt.Reps = opt.Adaptive.MaxReps
	opt.Adaptive = nil
	var r *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		r = mustSweep(b, opt)
	}
	b.ReportMetric(float64(r.TotalReps), "total_reps")
}

// BenchmarkSweepSerial is the baseline: all 16 grid cells on a single
// worker.
func BenchmarkSweepSerial(b *testing.B) { sweepBench(b, 1) }

// BenchmarkSweepParallel fans the same 16 cells out across GOMAXPROCS
// workers. Identical results (same base seed, deterministic per-cell
// seeds), wall-clock divided by the core count: compare ns/op against
// BenchmarkSweepSerial.
func BenchmarkSweepParallel(b *testing.B) { sweepBench(b, 0) }

// BenchmarkBaselineSequential compares the pipelined processor against
// the non-pipelined baseline. Reported: the pipeline speedup.
func BenchmarkBaselineSequential(b *testing.B) {
	p := pipeline.DefaultParams()
	pipe := mustProcessor(b, p)
	seqNet, err := pipeline.SequentialProcessor(p)
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		sp := runStats(b, pipe, paperCycles, 9)
		ss := runStats(b, seqNet, paperCycles, 9)
		tp := mustThroughput(b, sp, "Issue")
		ts := mustThroughput(b, ss, "Issue")
		if ts > 0 {
			speedup = tp / ts
		}
	}
	b.ReportMetric(speedup, "pipeline_speedup")
}

// BenchmarkAblationTimeEncoding quantifies the paper's remark that
// firing times can be simulated with enabling times: same event timing,
// different place statistics (the in-flight tokens become visible) and
// a larger net. Reported: the transition count growth and the absolute
// throughput difference (should be ~0).
func BenchmarkAblationTimeEncoding(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	enc, err := petri.EncodeFiringAsEnabling(net)
	if err != nil {
		b.Fatal(err)
	}
	var dIPC float64
	for i := 0; i < b.N; i++ {
		s1 := runStats(b, net, paperCycles, 1988)
		s2 := runStats(b, enc, paperCycles, 1988)
		dIPC = mustThroughput(b, s1, "Issue") - mustThroughput(b, s2, "Issue")
		if dIPC < 0 {
			dIPC = -dIPC
		}
	}
	b.ReportMetric(float64(enc.NumTrans()-net.NumTrans()), "extra_transitions")
	b.ReportMetric(dIPC, "abs_ipc_delta")
}

// BenchmarkAblationInterpreted measures what the interpreted model
// costs at runtime compared with the explicit per-type net (Section 3's
// trade-off: constant net size, data-dependent behaviour, slower
// stepping).
func BenchmarkAblationInterpreted(b *testing.B) {
	p := pipeline.DefaultParams()
	explicit := mustProcessor(b, p)
	interp, err := pipeline.InterpretedProcessor(p, pipeline.DefaultInstructionSet())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runStats(b, explicit, paperCycles, 1)
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runStats(b, interp, paperCycles, 1)
		}
	})
}

// BenchmarkReachability exercises the analyzer of Section 4 on the full
// pipeline net (untimed) plus the temporal check that the execution
// unit is always eventually free.
func BenchmarkReachability(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	var states int
	for i := 0; i < b.N; i++ {
		g, err := reach.Build(context.Background(), net, reach.Options{MaxStates: 200_000})
		if err != nil {
			b.Fatal(err)
		}
		states = len(g.Nodes)
		if !reach.Holds(g, reach.MustParseFormula("AG(EF({Execution_unit == 1}))")) {
			b.Fatal("execution unit can be permanently lost")
		}
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkAnalytic solves the full pipeline model analytically
// [RP84]: timed reachability graph -> embedded Markov chain -> exact
// steady state. Reported: the analytic instruction rate and bus
// utilization, to be compared with the simulated Figure 5 values (they
// agree to three decimals; see EXPERIMENTS.md).
func BenchmarkAnalytic(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	var bus, issue float64
	var states int
	for i := 0; i < b.N; i++ {
		r, err := analytic.Evaluate(context.Background(), net, reach.Options{MaxStates: 500_000})
		if err != nil {
			b.Fatal(err)
		}
		bus, _ = r.Utilization("Bus_busy")
		issue, _ = r.Throughput("Issue")
		states = r.States
	}
	b.ReportMetric(bus, "bus_util_exact")
	b.ReportMetric(issue, "ipc_exact")
	b.ReportMetric(float64(states), "timed_states")
}

// BenchmarkReplications runs the Figure 5 experiment as 10 independent
// replications and reports the 95% confidence half-width of the
// instruction rate — the statistical rigor layer over the paper's
// single-run table.
func BenchmarkReplications(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	var sum stats.Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = stats.Replicate(net, sim.Options{Horizon: paperCycles, Seed: 100}, 10,
			func(s *stats.Stats) (float64, error) { return s.Throughput("Issue") })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.Mean, "ipc_mean")
	b.ReportMetric(sum.CI95, "ipc_ci95")
}

// experimentBench runs one replicated Figure 5 experiment through the
// parallel driver and reports completed events per second.
func experimentBench(b *testing.B, workers int) {
	net := mustProcessor(b, pipeline.DefaultParams())
	var events int64
	var elapsed float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.Run(context.Background(), net, experiment.Options{
			Reps:     16,
			Workers:  workers,
			BaseSeed: 1988,
			Sim:      sim.Options{Horizon: paperCycles},
			Metrics:  []experiment.Metric{experiment.Throughput("Issue")},
		})
		if err != nil {
			b.Fatal(err)
		}
		events = r.Events
		elapsed = r.Elapsed.Seconds()
	}
	b.ReportMetric(float64(events)/elapsed, "events/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// BenchmarkExperimentSerial is the baseline: 16 replications of the
// Figure 5 experiment on a single worker.
func BenchmarkExperimentSerial(b *testing.B) { experimentBench(b, 1) }

// BenchmarkExperimentParallel fans the same 16 replications out across
// GOMAXPROCS workers. Identical results (same base seed), wall-clock
// divided by the core count: compare ns/op against
// BenchmarkExperimentSerial — at 4+ cores the speedup exceeds 2x.
func BenchmarkExperimentParallel(b *testing.B) { experimentBench(b, 0) }

// BenchmarkEngineReuse quantifies what the resettable engine saves a
// replication driver: back-to-back runs on one engine versus a fresh
// engine per run.
func BenchmarkEngineReuse(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	b.Run("reused", func(b *testing.B) {
		eng := sim.NewEngine(net)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), nil, sim.Options{Horizon: 1_000, Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(context.Background(), net, nil, sim.Options{Horizon: 1_000, Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorThroughput measures raw engine speed on the
// pipeline model: simulated cycles per wall-clock second drive every
// experiment above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	net := mustProcessor(b, pipeline.DefaultParams())
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(context.Background(), net, nil, sim.Options{Horizon: paperCycles, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Ends
	}
	b.ReportMetric(float64(events)*float64(b.N)/float64(b.N), "events_per_run")
}

// TestBenchmarkShapesHold is a fast correctness gate over the same
// machinery the benchmarks use: every "who wins" relation reported in
// EXPERIMENTS.md must hold when the benches are run as tests.
func TestBenchmarkShapesHold(t *testing.T) {
	net := mustProcessor(t, pipeline.DefaultParams())
	s := runStats(t, net, paperCycles, 1988)
	rows := map[string][2]float64{ // name -> {paper value, tolerance}
		"pre_fetching": {0.3107, 0.08},
		"fetching":     {0.2275, 0.08},
		"storing":      {0.12, 0.06},
		"Bus_busy":     {0.6582, 0.12},
	}
	for place, pv := range rows {
		got := mustUtilization(t, s, place)
		if got < pv[0]-pv[1] || got > pv[0]+pv[1] {
			t.Errorf("%s utilization = %.4f, paper %.4f (± %.2f)", place, got, pv[0], pv[1])
		}
	}
	issue := mustThroughput(t, s, "Issue")
	if issue < 0.09 || issue > 0.16 {
		t.Errorf("Issue throughput %.4f vs paper 0.1238", issue)
	}
}

// Example-flavoured documentation check: the derived quantities the
// paper reads off Figure 5 print without error.
func Example() {
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		panic(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 1988}); err != nil {
		panic(err)
	}
	issue, _ := s.Throughput("Issue")
	fmt.Printf("instruction rate in [0.09, 0.16]: %v\n", issue > 0.09 && issue < 0.16)
	// Output: instruction rate in [0.09, 0.16]: true
}
